open Twmc_geometry
open Twmc_netlist
module Rng = Twmc_sa.Rng
module Schedule = Twmc_sa.Schedule
module Domain_pool = Twmc_util.Domain_pool

type temp_record = {
  temperature : float;
  cost : float;
  c1 : float;
  c2_raw : float;
  c3 : float;
  acceptance : float;
  window : float * float;
}

type result = {
  placement : Placement.t;
  t_inf : float;
  s_t : float;
  core : Rect.t;
  teil : float;
  c1 : float;
  residual_overlap : float;
  chip : Rect.t;
  move_stats : Moves.stats;
  trace : temp_record list;
  temperatures_visited : int;
  interrupted : bool;
}

let centered_core ~core_w ~core_h =
  Rect.make ~x0:(-(core_w / 2)) ~y0:(-(core_h / 2))
    ~x1:(core_w - (core_w / 2))
    ~y1:(core_h - (core_h / 2))

(* Scatter every cell uniformly over the core; used to sample the random
   ensemble that normalizes p2. *)
let randomize rng p =
  let core = Placement.core p in
  let nl = Placement.netlist p in
  let fixed = Array.make (Netlist.n_cells nl) false in
  Array.iter
    (function
      | Constr.Fixed { cell; _ } -> fixed.(cell) <- true
      | _ -> ())
    nl.Netlist.constraints;
  for ci = 0 to Netlist.n_cells nl - 1 do
    if fixed.(ci) then begin
      (* Preplaced cells stay put ([Moves.trial] vetoes their corrective
         moves, so scattering them would be permanent); the draws still
         happen to keep RNG consumption uniform per cell. *)
      ignore (Rng.int_incl rng core.Rect.x0 core.Rect.x1);
      ignore (Rng.int_incl rng core.Rect.y0 core.Rect.y1)
    end
    else
      Placement.set_cell p ci
        ~x:(Rng.int_incl rng core.Rect.x0 core.Rect.x1)
        ~y:(Rng.int_incl rng core.Rect.y0 core.Rect.y1)
        ()
  done

let normalize_p2 rng p ~eta ~samples =
  let c1s = ref 0.0 and c2s = ref 0.0 in
  for _ = 1 to samples do
    randomize rng p;
    c1s := !c1s +. Placement.c1 p;
    c2s := !c2s +. Placement.c2_raw p
  done;
  let p2 = if !c2s <= 0.0 then 1.0 else eta *. !c1s /. !c2s in
  Placement.set_p2 p p2

(* The paper scales T∞ by the average cell area including the estimated
   interconnect area (Eqns 19–21). *)
let avg_effective_cell_area p =
  let nl = Placement.netlist p in
  let n = Netlist.n_cells nl in
  let total = ref 0 in
  for ci = 0 to n - 1 do
    List.iter
      (fun r -> total := !total + Rect.area r)
      (Placement.expanded_tiles p ci)
  done;
  float_of_int !total /. float_of_int (max 1 n)

module Obs = Twmc_obs.Ctx
module Attr = Twmc_obs.Attr
module Metrics = Twmc_obs.Metrics

(* Aggregate move-class accept counters into the registry.  Counter adds
   commute, so the totals are deterministic even when best-of-K replicas
   record concurrently. *)
let record_move_stats obs (s : Moves.stats) =
  if Obs.metrics_on obs then begin
    let m = obs.Obs.metrics in
    let add name v = Metrics.add (Metrics.counter m name) v in
    add "stage1.moves.attempts" s.Moves.attempts;
    add "stage1.moves.displacements" s.Moves.displacements;
    add "stage1.moves.aspect_rescues" s.Moves.aspect_rescues;
    add "stage1.moves.orient_changes" s.Moves.orient_changes;
    add "stage1.moves.interchanges" s.Moves.interchanges;
    add "stage1.moves.interchange_rescues" s.Moves.interchange_rescues;
    add "stage1.moves.pin_moves" s.Moves.pin_moves;
    add "stage1.moves.variant_changes" s.Moves.variant_changes;
    for c = 0 to Moves.n_classes - 1 do
      let cls = Moves.class_name c in
      add
        (Printf.sprintf "stage1.class.%s.attempts" cls)
        s.Moves.class_attempts.(c);
      add
        (Printf.sprintf "stage1.class.%s.accepts" cls)
        s.Moves.class_accepts.(c)
    done
  end

(* One per-class efficacy point per finished anneal: attempts, accepts and
   summed Δcost for every move class of the trial ladder — the trace-side
   source for [Health]'s move-class table. *)
let record_class_points obs ?replica ~prefix (s : Moves.stats) =
  if Obs.tracing obs then
    for c = 0 to Moves.n_classes - 1 do
      Obs.point obs
        ~name:(prefix ^ ".classes")
        ~attrs:
          ((match replica with
           | Some r -> [ ("replica", Attr.Int r) ]
           | None -> [])
          @ [ ("cls", Attr.Str (Moves.class_name c));
              ("attempts", Attr.Int s.Moves.class_attempts.(c));
              ("accepts", Attr.Int s.Moves.class_accepts.(c));
              ("dcost", Attr.Float s.Moves.class_dcost.(c)) ])
        ()
    done

let run ?(params = Params.default) ?core ?on_temp ?should_stop
    ?(obs = Obs.disabled) ?replica ~rng nl =
  (* Flight-recorder note first, then the fault site: an injected abort
     leaves the site it killed as the ring's last entry. *)
  Twmc_obs.Flight_recorder.note ?i:replica "stage1.replica";
  (* Fault site: fires per replica (inside the worker domain under
     best-of-K), exercising the guarded driver's retry path. *)
  Twmc_util.Fault.point "stage1.replica";
  let core =
    match core with
    | Some c -> c
    | None ->
        let r =
          Twmc_estimator.Core_area.determine ~beta:params.Params.beta
            ~aspect:params.Params.core_aspect
            ~fill_target:params.Params.fill_target nl
        in
        centered_core ~core_w:r.Twmc_estimator.Core_area.core_w
          ~core_h:r.Twmc_estimator.Core_area.core_h
  in
  let estimator =
    Twmc_estimator.Dynamic_area.create ~beta:params.Params.beta
      ~core_w:(Rect.width core) ~core_h:(Rect.height core) nl
  in
  let p =
    Placement.create ~params ~core ~expander:(Placement.Dynamic estimator) ~rng
      nl
  in
  normalize_p2 rng p ~eta:params.Params.eta ~samples:params.Params.n_p2_samples;
  let s_t = Schedule.s_t ~avg_cell_area:(avg_effective_cell_area p) in
  let t_inf = Schedule.t_infinity ~s_t in
  let schedule = Schedule.stage1 ~s_t in
  let limiter =
    Range_limiter.of_core ~rho:params.Params.rho ~t_inf ~core
      ~min_window:params.Params.min_window
  in
  let stats = Moves.make_stats () in
  let ctx = Moves.make_ctx ~placement:p ~limiter ~stats () in
  let a = params.Params.a_c * Netlist.n_cells nl in
  let trace = ref [] in
  let n_temps = ref 0 in
  let t_floor = 1e-4 *. t_inf in
  let poll = match should_stop with None -> fun () -> false | Some f -> f in
  let stopped = ref false in
  (* Cooperative timeout: poll the guard every 128 moves so a wall-clock
     budget cuts the anneal off mid-inner-loop, not at the next temperature. *)
  let inner temp =
    let i = ref 0 in
    while !i < a && not !stopped do
      Moves.generate ctx rng ~temp;
      incr i;
      if !i land 127 = 0 && poll () then stopped := true
    done
  in
  let rec loop temp =
    incr n_temps;
    let accepted_before =
      stats.Moves.displacements + stats.Moves.interchanges
      + stats.Moves.orient_changes + stats.Moves.aspect_rescues
    in
    inner temp;
    (* Correct any float drift in the incremental accumulators. *)
    Placement.recompute_all p;
    let accepted_after =
      stats.Moves.displacements + stats.Moves.interchanges
      + stats.Moves.orient_changes + stats.Moves.aspect_rescues
    in
    let rec_ =
      { temperature = temp;
        cost = Placement.total_cost p;
        c1 = Placement.c1 p;
        c2_raw = Placement.c2_raw p;
        c3 = Placement.c3 p;
        acceptance = float_of_int (accepted_after - accepted_before) /. float_of_int a;
        window = Range_limiter.window limiter ~temp }
    in
    trace := rec_ :: !trace;
    (match on_temp with Some f -> f rec_ | None -> ());
    Twmc_obs.Flight_recorder.note ?i:replica ~f:temp "stage1.temp";
    if Obs.tracing obs then begin
      let wx, wy = rec_.window in
      Obs.point obs ~name:"stage1.temp"
        ~attrs:
          ((match replica with
           | Some r -> [ ("replica", Attr.Int r) ]
           | None -> [])
          @ [ ("t", Attr.Float temp); ("cost", Attr.Float rec_.cost);
              ("c1", Attr.Float rec_.c1); ("c2", Attr.Float rec_.c2_raw);
              ("c3", Attr.Float rec_.c3);
              ("acceptance", Attr.Float rec_.acceptance);
              ("wx", Attr.Float wx); ("wy", Attr.Float wy);
              (* The schedule's Eqn 19-21 driver, sampled per temperature
                 so [Health] can watch the estimator converge. *)
              ("est", Attr.Float (avg_effective_cell_area p)) ])
        ()
    end;
    if !stopped then ()
    (* Stop after an inner loop at the minimum window span (Sec 3.3). *)
    else if Range_limiter.at_min_span limiter ~temp then quench temp 0
    else
      let temp' = Schedule.next schedule temp in
      if temp' < t_floor then quench temp' 0 else loop temp'
  (* The paper's T0 is effectively zero; for small cores the minimum window
     span is reached while T is still warm enough to leave residual overlap,
     so finish with the explicit quench tail. *)
  and quench temp _k =
    n_temps :=
      !n_temps
      + Quench.run ~rng ~placement:p ~stats ~limiter ~moves_per_loop:a
          ~t_start:temp ?should_stop ()
  in
  Obs.span obs ~name:"stage1.anneal"
    ~attrs:
      (if Obs.tracing obs then
         (match replica with
         | Some r -> [ ("replica", Attr.Int r) ]
         | None -> [])
         @ [ ("cells", Attr.Int (Netlist.n_cells nl));
             ("t_inf", Attr.Float t_inf) ]
       else [])
    (fun () -> loop t_inf);
  Placement.recompute_all p;
  record_move_stats obs stats;
  record_class_points obs ?replica ~prefix:"stage1" stats;
  { placement = p;
    t_inf;
    s_t;
    core;
    teil = Placement.teil p;
    c1 = Placement.c1 p;
    residual_overlap = Placement.c2_raw p;
    chip = Placement.chip_bbox p;
    move_stats = stats;
    trace = List.rev !trace;
    temperatures_visited = !n_temps;
    interrupted = !stopped || poll () }

(* --------------------------------------------- best-of-K multi-start *)

type multi_result = {
  best : result;
  best_index : int;
  replica_costs : float array;
}

let run_best_of_k ?params ?core ?should_stop ?pool ?(obs = Obs.disabled) ~rng
    ~k nl =
  if k <= 0 then invalid_arg "Stage1.run_best_of_k: k <= 0";
  (* Child streams are derived from the parent sequentially, BEFORE any
     replica runs: the set of streams depends only on (seed, k), never on
     the pool size, which is what makes --jobs 1 and --jobs N bit-identical
     at fixed K. *)
  let rngs = Array.init k (fun _ -> Rng.split rng) in
  let replica i child_rng =
    run ?params ?core ?should_stop ~obs ~replica:i ~rng:child_rng nl
  in
  let results =
    Obs.span obs ~name:"stage1.best_of_k"
      ~attrs:(if Obs.tracing obs then [ ("k", Attr.Int k) ] else [])
      (fun () ->
        match pool with
        | Some pool -> Domain_pool.parallel_map pool ~f:replica rngs
        | None -> Array.mapi replica rngs)
  in
  let cost r = Placement.total_cost r.placement in
  let replica_costs = Array.map cost results in
  (* Strict-< selection: ties go to the lowest replica index, a total order
     independent of evaluation order. *)
  let best_index = ref 0 in
  for i = 1 to k - 1 do
    if replica_costs.(i) < replica_costs.(!best_index) then best_index := i
  done;
  Twmc_obs.Flight_recorder.note ~i:!best_index
    ~f:replica_costs.(!best_index) "stage1.winner";
  if Obs.tracing obs then
    Obs.point obs ~name:"stage1.winner"
      ~attrs:
        [ ("index", Attr.Int !best_index);
          ("cost", Attr.Float replica_costs.(!best_index)) ]
      ();
  if Obs.metrics_on obs then begin
    (* Sampled in index order after the join — deterministic at any pool
       size. *)
    let s = Metrics.series obs.Obs.metrics "stage1.replica_cost" in
    Array.iter (Metrics.sample s) replica_costs
  end;
  { best = results.(!best_index);
    best_index = !best_index;
    replica_costs }
