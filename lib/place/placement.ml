open Twmc_geometry
open Twmc_netlist

type expander =
  | No_expansion
  | Dynamic of Twmc_estimator.Dynamic_area.t
  | Static of (int * int * int * int) array

type cell_state = {
  mutable x : int;
  mutable y : int;
  mutable orient : Orient.t;
  mutable variant : int;
  mutable sites : int array;
  mutable abs_tiles : Rect.t list;
  mutable exp_tiles : Rect.t list;
  mutable pin_pos : (int * int) array;
  mutable bbox : Rect.t;
  mutable occ : int array;
  (* occupancy of the current variant's sites *)
}

type t = {
  nl : Netlist.t;
  prm : Params.t;
  mutable core : Rect.t;
  mutable expander : expander;
  cells : cell_state array;
  net_c1 : float array;
  net_len : float array;
  (* Exact per-net span extremes with support counts: how many pin refs sit
     on each extreme.  A moved pin only forces a net rescan when it was the
     sole support of a boundary it left. *)
  net_minx : int array;
  net_maxx : int array;
  net_miny : int array;
  net_maxy : int array;
  net_cminx : int array;
  net_cmaxx : int array;
  net_cminy : int array;
  net_cmaxy : int array;
  (* nets_of_cell as arrays (same order as the list — the C1/TEIL float
     accumulator chains depend on it), plus the pin refs of each cell on
     each of its nets (with multiplicity, matching the rescan counting). *)
  cell_nets : int array array;
  cell_net_pins : int array array array;
  cell_c3 : float array;
  (* Placement constraints (netlist order) and their cached integer-valued
     penalties; [cons_of_cell.(ci)] lists the constraint slots that must
     re-evaluate when cell [ci]'s geometry changes (ascending order — the
     C4 accumulator chain depends on it). *)
  cons : Constr.t array;
  cpen : float array;
  cons_of_cell : int array array;
  mutable c1v : float;
  mutable c2v : float;
  mutable c3v : float;
  mutable c4v : float;
  mutable teilv : float;
  mutable p2v : float;
  (* Spatial index of expanded-tile bboxes, keyed by cell index; kept in
     sync with [cell_state.bbox] and rebuilt by [recompute_all]. *)
  mutable idx : Spatial.t;
  (* Scratch: pre-move pin positions of the cell being mutated. *)
  old_pp : (int * int) array;
  (* Scratch for [delta_cost]: per-net simulated C1, valid when the stamp
     matches the current simulation pass. *)
  sim_net_c1 : float array;
  sim_net_stamp : int array;
  (* Same device for simulated constraint penalties. *)
  sim_cpen : float array;
  sim_cpen_stamp : int array;
  mutable sim_stamp : int;
  (* Lazy caches of orientation-transformed geometry, keyed
     [cell][variant][orient]. *)
  tiles_cache : Rect.t list option array array array;
  sites_cache : (int * int) array option array array array;
  fixed_cache : (int * int) array option array array;  (* [cell][orient] *)
}

let netlist t = t.nl
let params t = t.prm
let core t = t.core

(* ------------------------------------------------------------------ *)
(* Geometry caches                                                     *)

let cached_tiles t ci vi o =
  let oi = Orient.to_int o in
  match t.tiles_cache.(ci).(vi).(oi) with
  | Some tiles -> tiles
  | None ->
      let shape = (Cell.variant t.nl.Netlist.cells.(ci) vi).Cell.shape in
      let tiles = Shape.tiles (Shape.transform o shape) in
      t.tiles_cache.(ci).(vi).(oi) <- Some tiles;
      tiles

let cached_sites t ci vi o =
  let oi = Orient.to_int o in
  match t.sites_cache.(ci).(vi).(oi) with
  | Some a -> a
  | None ->
      let v = Cell.variant t.nl.Netlist.cells.(ci) vi in
      let a =
        Array.map
          (fun (s : Pin_site.t) -> Orient.apply o (s.Pin_site.x, s.Pin_site.y))
          v.Cell.sites
      in
      t.sites_cache.(ci).(vi).(oi) <- Some a;
      a

let cached_fixed t ci o =
  let oi = Orient.to_int o in
  match t.fixed_cache.(ci).(oi) with
  | Some a -> a
  | None ->
      let c = t.nl.Netlist.cells.(ci) in
      let a =
        Array.map
          (fun (p : Pin.t) ->
            match p.Pin.loc with
            | Pin.Fixed (x, y) -> Orient.apply o (x, y)
            | Pin.Uncommitted _ -> (0, 0))
          c.Cell.pins
      in
      t.fixed_cache.(ci).(oi) <- Some a;
      a

(* ------------------------------------------------------------------ *)
(* Tile expansion                                                      *)

let expand_tile t ci vi (r : Rect.t) =
  match t.expander with
  | No_expansion -> r
  | Dynamic est ->
      (* The modulation functions live in core-centered coordinates. *)
      let ccx, ccy = Rect.center t.core in
      let shifted = Rect.translate r ~dx:(-ccx) ~dy:(-ccy) in
      let left, right, bottom, top =
        Twmc_estimator.Dynamic_area.tile_expansions est ~cell:ci ~variant:vi
          shifted
      in
      Rect.expand r ~left ~right ~bottom ~top
  | Static exps ->
      let left, right, bottom, top = exps.(ci) in
      Rect.expand r ~left ~right ~bottom ~top

(* ------------------------------------------------------------------ *)
(* Spatial index                                                       *)

let make_index t =
  let n = Array.length t.cells in
  let g =
    max 4 (min 64 (2 * int_of_float (ceil (sqrt (float_of_int (max 1 n))))))
  in
  let extent = max (Rect.width t.core) (Rect.height t.core) in
  Spatial.create ~world:t.core ~cell_size:(max 1 ((extent + g - 1) / g))

(* ------------------------------------------------------------------ *)
(* Per-cell cache refresh                                              *)

let refresh_cell t ci =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  let tiles0 = cached_tiles t ci cs.variant cs.orient in
  cs.abs_tiles <- List.map (fun r -> Rect.translate r ~dx:cs.x ~dy:cs.y) tiles0;
  cs.exp_tiles <- List.map (expand_tile t ci cs.variant) cs.abs_tiles;
  cs.bbox <-
    (match cs.exp_tiles with
    | [] -> Rect.empty
    | r :: rest -> List.fold_left Rect.hull r rest);
  if Spatial.mem t.idx ci then Spatial.update t.idx ci cs.bbox
  else Spatial.insert t.idx ci cs.bbox;
  let fixed = cached_fixed t ci cs.orient in
  let site_pos = cached_sites t ci cs.variant cs.orient in
  Array.iteri
    (fun p (pin : Pin.t) ->
      let lx, ly =
        match pin.Pin.loc with
        | Pin.Fixed _ -> fixed.(p)
        | Pin.Uncommitted _ -> site_pos.(cs.sites.(p))
      in
      cs.pin_pos.(p) <- (cs.x + lx, cs.y + ly))
    c.Cell.pins

(* ------------------------------------------------------------------ *)
(* Net spans                                                           *)

(* Full rescan of one net: extremes and their support counts in one pass
   over the pin refs.  This is the fallback when an incremental update
   cannot prove the surviving support of a boundary. *)
let rescan_net_span t n =
  let net = t.nl.Netlist.nets.(n) in
  let minx = ref max_int and maxx = ref min_int in
  let miny = ref max_int and maxy = ref min_int in
  let cminx = ref 0 and cmaxx = ref 0 and cminy = ref 0 and cmaxy = ref 0 in
  Array.iter
    (fun (r : Net.pin_ref) ->
      let x, y = t.cells.(r.Net.cell).pin_pos.(r.Net.pin) in
      if x < !minx then begin minx := x; cminx := 1 end
      else if x = !minx then incr cminx;
      if x > !maxx then begin maxx := x; cmaxx := 1 end
      else if x = !maxx then incr cmaxx;
      if y < !miny then begin miny := y; cminy := 1 end
      else if y = !miny then incr cminy;
      if y > !maxy then begin maxy := y; cmaxy := 1 end
      else if y = !maxy then incr cmaxy)
    net.Net.pins;
  t.net_minx.(n) <- !minx;
  t.net_maxx.(n) <- !maxx;
  t.net_miny.(n) <- !miny;
  t.net_maxy.(n) <- !maxy;
  t.net_cminx.(n) <- !cminx;
  t.net_cmaxx.(n) <- !cmaxx;
  t.net_cminy.(n) <- !cminy;
  t.net_cmaxy.(n) <- !cmaxy

(* C1/TEIL contribution of a net from its cached extremes — the exact same
   float expression [net_contrib] used on the freshly scanned extremes, so
   the incremental path is bit-identical. *)
let net_cost_of_span t n =
  let net = t.nl.Netlist.nets.(n) in
  let dx = float_of_int (t.net_maxx.(n) - t.net_minx.(n))
  and dy = float_of_int (t.net_maxy.(n) - t.net_miny.(n)) in
  ((dx *. net.Net.hweight) +. (dy *. net.Net.vweight), dx +. dy)

(* Incremental update of one min-extreme axis after the pins [pins] of one
   cell moved from [old_pp] to [new_pp].  Returns [false] when the old
   extreme lost all its support and no moved pin re-establishes it — the
   caller must rescan the net. *)
let update_min_axis ext cnt n pins old_pp new_pp ~use_x =
  let e = ext.(n) in
  let removed = ref 0 and bestnew = ref max_int and bestcnt = ref 0 in
  Array.iter
    (fun p ->
      let ox, oy = old_pp.(p) in
      if (if use_x then ox else oy) = e then incr removed;
      let nx, ny = new_pp.(p) in
      let v = if use_x then nx else ny in
      if v < !bestnew then begin bestnew := v; bestcnt := 1 end
      else if v = !bestnew then incr bestcnt)
    pins;
  let rem = cnt.(n) - !removed in
  if !bestnew < e then begin
    ext.(n) <- !bestnew;
    cnt.(n) <- !bestcnt;
    true
  end
  else if !bestnew = e then begin cnt.(n) <- rem + !bestcnt; true end
  else if rem > 0 then begin cnt.(n) <- rem; true end
  else false

let update_max_axis ext cnt n pins old_pp new_pp ~use_x =
  let e = ext.(n) in
  let removed = ref 0 and bestnew = ref min_int and bestcnt = ref 0 in
  Array.iter
    (fun p ->
      let ox, oy = old_pp.(p) in
      if (if use_x then ox else oy) = e then incr removed;
      let nx, ny = new_pp.(p) in
      let v = if use_x then nx else ny in
      if v > !bestnew then begin bestnew := v; bestcnt := 1 end
      else if v = !bestnew then incr bestcnt)
    pins;
  let rem = cnt.(n) - !removed in
  if !bestnew > e then begin
    ext.(n) <- !bestnew;
    cnt.(n) <- !bestcnt;
    true
  end
  else if !bestnew = e then begin cnt.(n) <- rem + !bestcnt; true end
  else if rem > 0 then begin cnt.(n) <- rem; true end
  else false

(* Update the cached span of net [n] (the [k]-th net of cell [ci]) after
   [ci]'s pins moved from [t.old_pp] to their current positions. *)
let update_net_span t ci k n =
  let pins = t.cell_net_pins.(ci).(k) in
  let np = t.cells.(ci).pin_pos and op = t.old_pp in
  let ok =
    update_min_axis t.net_minx t.net_cminx n pins op np ~use_x:true
    && update_max_axis t.net_maxx t.net_cmaxx n pins op np ~use_x:true
    && update_min_axis t.net_miny t.net_cminy n pins op np ~use_x:false
    && update_max_axis t.net_maxy t.net_cmaxy n pins op np ~use_x:false
  in
  if not ok then rescan_net_span t n

(* ------------------------------------------------------------------ *)
(* Cost terms                                                          *)

let tiles_overlap tiles_a tiles_b total =
  List.iter
    (fun ra ->
      List.iter (fun rb -> total := !total + Rect.inter_area ra rb) tiles_b)
    tiles_a

(* Overlap of cell [ci]'s expanded tiles against every other cell and the
   core-boundary dummies (footnote 16: area outside the core is overlap).
   Only the index's candidate neighbors are visited; the total is an exact
   integer sum, so any enumeration of a superset of the overlapping pairs
   yields the identical float. *)
let cell_overlap t ci =
  let cs = t.cells.(ci) in
  let total = ref 0 in
  List.iter
    (fun r -> total := !total + (Rect.area r - Rect.inter_area r t.core))
    cs.exp_tiles;
  Spatial.iter_query t.idx cs.bbox (fun cj ->
      if cj <> ci then begin
        let other = t.cells.(cj) in
        if Rect.overlaps cs.bbox other.bbox then
          tiles_overlap cs.exp_tiles other.exp_tiles total
      end);
  float_of_int !total

(* The pre-index full scan, kept as the benchmark and differential-test
   reference. *)
let cell_overlap_scan t ci =
  let cs = t.cells.(ci) in
  let total = ref 0 in
  List.iter
    (fun r -> total := !total + (Rect.area r - Rect.inter_area r t.core))
    cs.exp_tiles;
  Array.iteri
    (fun cj other ->
      if cj <> ci && Rect.overlaps cs.bbox other.bbox then
        tiles_overlap cs.exp_tiles other.exp_tiles total)
    t.cells;
  float_of_int !total

let occupancy_of t ci ~variant ~sites =
  let c = t.nl.Netlist.cells.(ci) in
  let v = Cell.variant c variant in
  let occ = Array.make (Array.length v.Cell.sites) 0 in
  Array.iteri
    (fun p (pin : Pin.t) ->
      match pin.Pin.loc with
      | Pin.Uncommitted _ -> occ.(sites.(p)) <- occ.(sites.(p)) + 1
      | Pin.Fixed _ -> ())
    c.Cell.pins;
  occ

let c3_of_occ t ci ~variant occ =
  let c = t.nl.Netlist.cells.(ci) in
  let v = Cell.variant c variant in
  let kappa = t.prm.Params.kappa in
  let total = ref 0.0 in
  Array.iteri
    (fun s n ->
      let cap = v.Cell.sites.(s).Pin_site.capacity in
      if n > cap then
        let e = float_of_int (n - cap + kappa) in
        total := !total +. (e *. e))
    occ;
  !total

let refresh_occupancy t ci =
  let cs = t.cells.(ci) in
  cs.occ <- occupancy_of t ci ~variant:cs.variant ~sites:cs.sites;
  let old = t.cell_c3.(ci) in
  let v = c3_of_occ t ci ~variant:cs.variant cs.occ in
  t.cell_c3.(ci) <- v;
  t.c3v <- t.c3v -. old +. v

(* ------------------------------------------------------------------ *)
(* Constraint penalties (C4)                                           *)

(* Whole-constraint evaluation against the committed state.  [Constr.eval]
   returns an exact integer, so the float accumulator chains built on it
   cancel exactly across the apply, delta and recompute paths. *)
let eval_constraint t k =
  float_of_int
    (Constr.eval ~n_cells:(Array.length t.cells)
       ~tiles:(fun ci -> t.cells.(ci).abs_tiles)
       ~pos:(fun ci -> (t.cells.(ci).x, t.cells.(ci).y))
       ~core:t.core t.cons.(k))

(* ------------------------------------------------------------------ *)
(* Full recomputation                                                  *)

let recompute_all t =
  t.idx <- make_index t;
  Array.iteri (fun ci _ -> refresh_cell t ci) t.cells;
  t.c1v <- 0.0;
  t.teilv <- 0.0;
  Array.iteri
    (fun n _ ->
      rescan_net_span t n;
      let c1, len = net_cost_of_span t n in
      t.net_c1.(n) <- c1;
      t.net_len.(n) <- len;
      t.c1v <- t.c1v +. c1;
      t.teilv <- t.teilv +. len)
    t.nl.Netlist.nets;
  t.c3v <- 0.0;
  Array.iteri
    (fun ci cs ->
      cs.occ <- occupancy_of t ci ~variant:cs.variant ~sites:cs.sites;
      t.cell_c3.(ci) <- c3_of_occ t ci ~variant:cs.variant cs.occ;
      t.c3v <- t.c3v +. t.cell_c3.(ci))
    t.cells;
  (* Each unordered pair counted once; cell_overlap counts both directions,
     and the boundary term once per cell.  Deliberately the full O(n^2)
     scan, independent of the index: this is the drift oracle the
     incremental path is checked against. *)
  let pairwise = ref 0.0 and boundary = ref 0.0 in
  Array.iteri
    (fun ci cs ->
      List.iter
        (fun r ->
          boundary :=
            !boundary +. float_of_int (Rect.area r - Rect.inter_area r t.core))
        cs.exp_tiles;
      Array.iteri
        (fun cj other ->
          if cj > ci && Rect.overlaps cs.bbox other.bbox then
            List.iter
              (fun ra ->
                List.iter
                  (fun rb ->
                    pairwise := !pairwise +. float_of_int (Rect.inter_area ra rb))
                  other.exp_tiles)
              cs.exp_tiles)
        t.cells)
    t.cells;
  t.c2v <- !pairwise +. !boundary;
  t.c4v <- 0.0;
  Array.iteri
    (fun k _ ->
      let v = eval_constraint t k in
      t.cpen.(k) <- v;
      t.c4v <- t.c4v +. v)
    t.cons

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ~params ~core ~expander ~rng (nl : Netlist.t) =
  if Rect.is_empty core then invalid_arg "Placement.create: empty core";
  let n = Netlist.n_cells nl in
  let cells =
    Array.init n (fun ci ->
        let c = nl.Netlist.cells.(ci) in
        { x = Twmc_sa.Rng.int_incl rng core.Rect.x0 core.Rect.x1;
          y = Twmc_sa.Rng.int_incl rng core.Rect.y0 core.Rect.y1;
          orient = Orient.R0;
          variant = 0;
          sites = Sites.random_assignment rng c ~variant:0;
          abs_tiles = [];
          exp_tiles = [];
          pin_pos = Array.make (Cell.n_pins c) (0, 0);
          bbox = Rect.empty;
          occ = [||] })
  in
  (* Preplaced macros start at their target, overriding the random draw
     (the draw still happens, keeping RNG consumption uniform per cell). *)
  Array.iter
    (function
      | Constr.Fixed { cell; x; y } ->
          cells.(cell).x <- x;
          cells.(cell).y <- y
      | _ -> ())
    nl.Netlist.constraints;
  let cons = nl.Netlist.constraints in
  let cons_of_cell =
    Array.init n (fun ci ->
        let acc = ref [] in
        Array.iteri
          (fun k c ->
            let touches =
              match Constr.scope c with
              | None -> true
              | Some cells -> List.mem ci cells
            in
            if touches then acc := k :: !acc)
          cons;
        Array.of_list (List.rev !acc))
  in
  let n_nets = Netlist.n_nets nl in
  let cell_nets = Array.map Array.of_list nl.Netlist.nets_of_cell in
  let cell_net_pins =
    Array.init n (fun ci ->
        Array.map
          (fun nidx ->
            let net = nl.Netlist.nets.(nidx) in
            let acc = ref [] in
            Array.iter
              (fun (r : Net.pin_ref) ->
                if r.Net.cell = ci then acc := r.Net.pin :: !acc)
              net.Net.pins;
            Array.of_list (List.rev !acc))
          cell_nets.(ci))
  in
  let max_pins =
    Array.fold_left (fun acc c -> max acc (Cell.n_pins c)) 0 nl.Netlist.cells
  in
  let t =
    { nl;
      prm = params;
      core;
      expander;
      cells;
      net_c1 = Array.make n_nets 0.0;
      net_len = Array.make n_nets 0.0;
      net_minx = Array.make n_nets 0;
      net_maxx = Array.make n_nets 0;
      net_miny = Array.make n_nets 0;
      net_maxy = Array.make n_nets 0;
      net_cminx = Array.make n_nets 0;
      net_cmaxx = Array.make n_nets 0;
      net_cminy = Array.make n_nets 0;
      net_cmaxy = Array.make n_nets 0;
      cell_nets;
      cell_net_pins;
      cell_c3 = Array.make n 0.0;
      cons;
      cpen = Array.make (Array.length cons) 0.0;
      cons_of_cell;
      c1v = 0.0;
      c2v = 0.0;
      c3v = 0.0;
      c4v = 0.0;
      teilv = 0.0;
      p2v = 1.0;
      (* Placeholder one-bin index; [recompute_all] installs the real one. *)
      idx =
        Spatial.create ~world:core
          ~cell_size:(max 1 (max (Rect.width core) (Rect.height core)));
      old_pp = Array.make max_pins (0, 0);
      sim_net_c1 = Array.make n_nets 0.0;
      sim_net_stamp = Array.make n_nets 0;
      sim_cpen = Array.make (Array.length cons) 0.0;
      sim_cpen_stamp = Array.make (Array.length cons) 0;
      sim_stamp = 0;
      tiles_cache =
        Array.init n (fun ci ->
            Array.init (Cell.n_variants nl.Netlist.cells.(ci)) (fun _ ->
                Array.make 8 None));
      sites_cache =
        Array.init n (fun ci ->
            Array.init (Cell.n_variants nl.Netlist.cells.(ci)) (fun _ ->
                Array.make 8 None));
      fixed_cache = Array.init n (fun _ -> Array.make 8 None) }
  in
  recompute_all t;
  t

let expander t = t.expander

let set_expander t e =
  t.expander <- e;
  recompute_all t

let set_core t core =
  if Rect.is_empty core then invalid_arg "Placement.set_core: empty core";
  t.core <- core;
  recompute_all t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let cell_pos t ci = (t.cells.(ci).x, t.cells.(ci).y)
let cell_orient t ci = t.cells.(ci).orient
let cell_variant t ci = t.cells.(ci).variant
let site_of_pin t ~cell ~pin = t.cells.(cell).sites.(pin)
let pin_position t ~cell ~pin = t.cells.(cell).pin_pos.(pin)
let abs_tiles t ci = t.cells.(ci).abs_tiles
let expanded_tiles t ci = t.cells.(ci).exp_tiles
let c1 t = t.c1v
let c2_raw t = t.c2v
let c3 t = t.c3v
let c4 t = t.c4v
let p2 t = t.p2v
let set_p2 t v = t.p2v <- v
let teil t = t.teilv
let n_constraints t = Array.length t.cons
let constraints t = t.cons
let constraint_penalty t k = t.cpen.(k)

(* The unconstrained expression is kept verbatim so netlists without
   constraints produce bit-identical costs (and trajectories) to the
   pre-constraint engine. *)
let total_cost t =
  let base = t.c1v +. (t.p2v *. t.c2v) +. (t.prm.Params.p3 *. t.c3v) in
  if Array.length t.cons = 0 then base
  else base +. (t.prm.Params.p4 *. t.c4v)

let chip_bbox t =
  Array.fold_left
    (fun acc cs -> List.fold_left Rect.hull acc cs.exp_tiles)
    Rect.empty t.cells

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let update_nets_of_cell t ci =
  Array.iteri
    (fun k n ->
      update_net_span t ci k n;
      let c1', len' = net_cost_of_span t n in
      t.c1v <- t.c1v -. t.net_c1.(n) +. c1';
      t.teilv <- t.teilv -. t.net_len.(n) +. len';
      t.net_c1.(n) <- c1';
      t.net_len.(n) <- len')
    t.cell_nets.(ci)

let set_cell_sites t ci sites =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  Array.blit cs.pin_pos 0 t.old_pp 0 (Array.length cs.pin_pos);
  cs.sites <- sites;
  let site_pos = cached_sites t ci cs.variant cs.orient in
  Array.iteri
    (fun p (pin : Pin.t) ->
      match pin.Pin.loc with
      | Pin.Uncommitted _ ->
          let lx, ly = site_pos.(cs.sites.(p)) in
          cs.pin_pos.(p) <- (cs.x + lx, cs.y + ly)
      | Pin.Fixed _ -> ())
    c.Cell.pins;
  update_nets_of_cell t ci;
  refresh_occupancy t ci

(* Clamp a site assignment into [variant]'s site array, honouring edge
   restrictions; mutates [sites] in place. *)
let reclamp_sites c ~variant sites =
  let n_sites = Array.length (Cell.variant c variant).Cell.sites in
  Array.iteri
    (fun p s ->
      if s >= 0 then begin
        let s = if s < n_sites then s else s mod max 1 n_sites in
        let allowed = Cell.allowed_sites c ~variant p in
        sites.(p) <-
          (if List.mem s allowed then s
           else
             match allowed with
             | [] ->
                 invalid_arg
                   "Placement.set_cell: pin has no allowed site in new \
                    variant"
             | a :: _ -> a)
      end)
    sites

let set_cell t ci ?x ?y ?orient ?variant ?sites () =
  match (x, y, orient, variant, sites) with
  | None, None, None, None, Some s ->
      (* Pin sites only, geometry untouched: C2 cannot change.  Safe for
         bit-identity because the overlap totals are integer-valued floats,
         so the skipped [c2v -. ov +. ov] chain is exact. *)
      set_cell_sites t ci s
  | _ ->
      let cs = t.cells.(ci) in
      let ov_old = cell_overlap t ci in
      Array.blit cs.pin_pos 0 t.old_pp 0 (Array.length cs.pin_pos);
      let variant_changed =
        match variant with Some v -> v <> cs.variant | None -> false
      in
      (match x with Some v -> cs.x <- v | None -> ());
      (match y with Some v -> cs.y <- v | None -> ());
      (match orient with Some v -> cs.orient <- v | None -> ());
      (match variant with Some v -> cs.variant <- v | None -> ());
      (match sites with
      | Some s -> cs.sites <- s
      | None ->
          if variant_changed then
            reclamp_sites t.nl.Netlist.cells.(ci) ~variant:cs.variant cs.sites);
      refresh_cell t ci;
      update_nets_of_cell t ci;
      let ov_new = cell_overlap t ci in
      t.c2v <- t.c2v -. ov_old +. ov_new;
      if variant_changed || sites <> None then refresh_occupancy t ci;
      Array.iter
        (fun k ->
          let v = eval_constraint t k in
          t.c4v <- t.c4v -. t.cpen.(k) +. v;
          t.cpen.(k) <- v)
        t.cons_of_cell.(ci)

(* ------------------------------------------------------------------ *)
(* Evaluate-without-apply                                              *)

type move =
  | Cell_move of {
      ci : int;
      x : int option;
      y : int option;
      orient : Orient.t option;
      variant : int option;
      sites : int array option;
    }
  | Sites_move of { ci : int; sites : int array }

(* Simulated state of a cell touched by pending moves. *)
type sim_cell = {
  m_ci : int;
  m_x : int;
  m_y : int;
  m_orient : Orient.t;
  m_variant : int;
  m_sites : int array;
  m_pp : (int * int) array;
  m_abs : Rect.t list;
  m_exp : Rect.t list;
  m_bbox : Rect.t;
  mutable m_c3 : float;
}

(* Computes exactly the float that [apply_move]-ing every move and then
   subtracting the prior [total_cost] would produce — same accumulator
   chains in the same order on the same operands — without mutating the
   placement.  Keeping the delta bit-identical keeps the Metropolis RNG
   consumption, and therefore whole trajectories, identical to the
   mutate-and-restore path this replaces. *)
let delta_cost t moves =
  t.sim_stamp <- t.sim_stamp + 1;
  let stamp = t.sim_stamp in
  let pending = ref [] in
  let find_pending ci = List.find_opt (fun pc -> pc.m_ci = ci) !pending in
  let install pc =
    pending := pc :: List.filter (fun q -> q.m_ci <> pc.m_ci) !pending
  in
  let eff_pp cell =
    match find_pending cell with
    | Some pc -> pc.m_pp
    | None -> t.cells.(cell).pin_pos
  in
  let eff_net_c1 n =
    if t.sim_net_stamp.(n) = stamp then t.sim_net_c1.(n) else t.net_c1.(n)
  in
  let tot0 = total_cost t in
  let c1acc = ref t.c1v and c2acc = ref t.c2v and c3acc = ref t.c3v in
  let c4acc = ref t.c4v in
  (* Effective constraint evaluation over pending-aware views, mirroring
     the per-constraint chain [set_cell] runs on its committed caches. *)
  let eff_cpen k =
    if t.sim_cpen_stamp.(k) = stamp then t.sim_cpen.(k) else t.cpen.(k)
  in
  let sim_eval_constraint k =
    float_of_int
      (Constr.eval ~n_cells:(Array.length t.cells)
         ~tiles:(fun ci ->
           match find_pending ci with
           | Some pc -> pc.m_abs
           | None -> t.cells.(ci).abs_tiles)
         ~pos:(fun ci ->
           match find_pending ci with
           | Some pc -> (pc.m_x, pc.m_y)
           | None -> (t.cells.(ci).x, t.cells.(ci).y))
         ~core:t.core t.cons.(k))
  in
  (* Rescan of one net over effective pin positions.  Extremes are exact
     ints, so a rescan and the incremental update of the apply path agree
     bit-for-bit. *)
  let sim_net_cost n =
    let net = t.nl.Netlist.nets.(n) in
    let minx = ref max_int and maxx = ref min_int in
    let miny = ref max_int and maxy = ref min_int in
    Array.iter
      (fun (r : Net.pin_ref) ->
        let x, y = (eff_pp r.Net.cell).(r.Net.pin) in
        if x < !minx then minx := x;
        if x > !maxx then maxx := x;
        if y < !miny then miny := y;
        if y > !maxy then maxy := y)
      net.Net.pins;
    let dx = float_of_int (!maxx - !minx) and dy = float_of_int (!maxy - !miny) in
    (dx *. net.Net.hweight) +. (dy *. net.Net.vweight)
  in
  let sim_update_nets ci =
    Array.iter
      (fun n ->
        let c1' = sim_net_cost n in
        c1acc := !c1acc -. eff_net_c1 n +. c1';
        t.sim_net_c1.(n) <- c1';
        t.sim_net_stamp.(n) <- stamp)
      t.cell_nets.(ci)
  in
  (* Overlap of an effective tile set: index candidates carry the committed
     geometry, so pending cells are skipped there and added back with their
     simulated geometry.  Integer sum — enumeration order is irrelevant. *)
  let sim_overlap ci ~exp ~bbox =
    let total = ref 0 in
    List.iter
      (fun r -> total := !total + (Rect.area r - Rect.inter_area r t.core))
      exp;
    Spatial.iter_query t.idx bbox (fun cj ->
        if
          cj <> ci
          && (match find_pending cj with None -> true | Some _ -> false)
        then begin
          let other = t.cells.(cj) in
          if Rect.overlaps bbox other.bbox then
            tiles_overlap exp other.exp_tiles total
        end);
    List.iter
      (fun pc ->
        if pc.m_ci <> ci && Rect.overlaps bbox pc.m_bbox then
          tiles_overlap exp pc.m_exp total)
      !pending;
    float_of_int !total
  in
  let eff_view ci =
    match find_pending ci with
    | Some pc ->
        ( pc.m_x, pc.m_y, pc.m_orient, pc.m_variant, pc.m_sites, pc.m_abs,
          pc.m_exp, pc.m_bbox, pc.m_c3 )
    | None ->
        let cs = t.cells.(ci) in
        ( cs.x, cs.y, cs.orient, cs.variant, cs.sites, cs.abs_tiles,
          cs.exp_tiles, cs.bbox, t.cell_c3.(ci) )
  in
  (* Mirrors [set_cell_sites]. *)
  let sim_sites_move ci sites =
    let ex, ey, eorient, evariant, _, eabs, eexp, ebbox, ec3 = eff_view ci in
    let c = t.nl.Netlist.cells.(ci) in
    let pp = Array.copy (eff_pp ci) in
    let site_pos = cached_sites t ci evariant eorient in
    Array.iteri
      (fun p (pin : Pin.t) ->
        match pin.Pin.loc with
        | Pin.Uncommitted _ ->
            let lx, ly = site_pos.(sites.(p)) in
            pp.(p) <- (ex + lx, ey + ly)
        | Pin.Fixed _ -> ())
      c.Cell.pins;
    let pc =
      { m_ci = ci; m_x = ex; m_y = ey; m_orient = eorient;
        m_variant = evariant; m_sites = sites; m_pp = pp; m_abs = eabs;
        m_exp = eexp; m_bbox = ebbox; m_c3 = ec3 }
    in
    install pc;
    sim_update_nets ci;
    let occ = occupancy_of t ci ~variant:evariant ~sites in
    let c3' = c3_of_occ t ci ~variant:evariant occ in
    c3acc := !c3acc -. ec3 +. c3';
    pc.m_c3 <- c3'
  in
  (* Mirrors [set_cell], including its sites-only routing. *)
  let sim_cell_move ci ~x ~y ~orient ~variant ~sites =
    match (x, y, orient, variant, sites) with
    | None, None, None, None, Some s -> sim_sites_move ci s
    | _ ->
        let ex, ey, eorient, evariant, esites, _, eexp, ebbox, ec3 =
          eff_view ci
        in
        let ov_old = sim_overlap ci ~exp:eexp ~bbox:ebbox in
        let variant_changed =
          match variant with Some v -> v <> evariant | None -> false
        in
        let nx = match x with Some v -> v | None -> ex in
        let ny = match y with Some v -> v | None -> ey in
        let norient = match orient with Some v -> v | None -> eorient in
        let nvariant = match variant with Some v -> v | None -> evariant in
        let nsites =
          match sites with
          | Some s -> s
          | None ->
              if variant_changed then begin
                let s = Array.copy esites in
                reclamp_sites t.nl.Netlist.cells.(ci) ~variant:nvariant s;
                s
              end
              else esites
        in
        (* Candidate geometry — mirrors [refresh_cell]. *)
        let c = t.nl.Netlist.cells.(ci) in
        let tiles0 = cached_tiles t ci nvariant norient in
        let abs = List.map (fun r -> Rect.translate r ~dx:nx ~dy:ny) tiles0 in
        let exp = List.map (expand_tile t ci nvariant) abs in
        let bbox =
          match exp with
          | [] -> Rect.empty
          | r :: rest -> List.fold_left Rect.hull r rest
        in
        let fixed = cached_fixed t ci norient in
        let site_pos = cached_sites t ci nvariant norient in
        let pp = Array.make (Cell.n_pins c) (0, 0) in
        Array.iteri
          (fun p (pin : Pin.t) ->
            let lx, ly =
              match pin.Pin.loc with
              | Pin.Fixed _ -> fixed.(p)
              | Pin.Uncommitted _ -> site_pos.(nsites.(p))
            in
            pp.(p) <- (nx + lx, ny + ly))
          c.Cell.pins;
        let pc =
          { m_ci = ci; m_x = nx; m_y = ny; m_orient = norient;
            m_variant = nvariant; m_sites = nsites; m_pp = pp; m_abs = abs;
            m_exp = exp; m_bbox = bbox; m_c3 = ec3 }
        in
        install pc;
        sim_update_nets ci;
        let ov_new = sim_overlap ci ~exp ~bbox in
        c2acc := !c2acc -. ov_old +. ov_new;
        if variant_changed || sites <> None then begin
          let occ = occupancy_of t ci ~variant:nvariant ~sites:nsites in
          let c3' = c3_of_occ t ci ~variant:nvariant occ in
          c3acc := !c3acc -. ec3 +. c3';
          pc.m_c3 <- c3'
        end;
        Array.iter
          (fun k ->
            let v = sim_eval_constraint k in
            c4acc := !c4acc -. eff_cpen k +. v;
            t.sim_cpen.(k) <- v;
            t.sim_cpen_stamp.(k) <- stamp)
          t.cons_of_cell.(ci)
  in
  List.iter
    (function
      | Cell_move { ci; x; y; orient; variant; sites } ->
          sim_cell_move ci ~x ~y ~orient ~variant ~sites
      | Sites_move { ci; sites } -> sim_sites_move ci sites)
    moves;
  let base = !c1acc +. (t.p2v *. !c2acc) +. (t.prm.Params.p3 *. !c3acc) in
  (if Array.length t.cons = 0 then base
   else base +. (t.prm.Params.p4 *. !c4acc))
  -. tot0

let apply_move t = function
  | Cell_move { ci; x; y; orient; variant; sites } ->
      set_cell t ci ?x ?y ?orient ?variant ?sites ()
  | Sites_move { ci; sites } -> set_cell_sites t ci sites

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type net_state = {
  ns_net : int;
  ns_c1 : float;
  ns_len : float;
  ns_minx : int;
  ns_maxx : int;
  ns_miny : int;
  ns_maxy : int;
  ns_cminx : int;
  ns_cmaxx : int;
  ns_cminy : int;
  ns_cmaxy : int;
}

type cell_snapshot = {
  s_idx : int;
  s_x : int;
  s_y : int;
  s_orient : Orient.t;
  s_variant : int;
  s_sites : int array;
  s_abs : Rect.t list;
  s_exp : Rect.t list;
  s_pp : (int * int) array;
  s_bbox : Rect.t;
  s_occ : int array;
  s_c3 : float;
  s_nets : net_state array;
  s_cons : (int * float) array;
}

type cost_snapshot = {
  g_c1 : float;
  g_c2 : float;
  g_c3 : float;
  g_c4 : float;
  g_teil : float;
}

let snapshot_cost t =
  { g_c1 = t.c1v; g_c2 = t.c2v; g_c3 = t.c3v; g_c4 = t.c4v; g_teil = t.teilv }

let restore_cost t s =
  t.c1v <- s.g_c1;
  t.c2v <- s.g_c2;
  t.c3v <- s.g_c3;
  t.c4v <- s.g_c4;
  t.teilv <- s.g_teil

let snapshot_cell t ci =
  let cs = t.cells.(ci) in
  { s_idx = ci;
    s_x = cs.x;
    s_y = cs.y;
    s_orient = cs.orient;
    s_variant = cs.variant;
    s_sites = Array.copy cs.sites;
    s_abs = cs.abs_tiles;
    s_exp = cs.exp_tiles;
    s_pp = Array.copy cs.pin_pos;
    s_bbox = cs.bbox;
    s_occ = Array.copy cs.occ;
    s_c3 = t.cell_c3.(ci);
    s_nets =
      Array.map
        (fun n ->
          { ns_net = n;
            ns_c1 = t.net_c1.(n);
            ns_len = t.net_len.(n);
            ns_minx = t.net_minx.(n);
            ns_maxx = t.net_maxx.(n);
            ns_miny = t.net_miny.(n);
            ns_maxy = t.net_maxy.(n);
            ns_cminx = t.net_cminx.(n);
            ns_cmaxx = t.net_cmaxx.(n);
            ns_cminy = t.net_cminy.(n);
            ns_cmaxy = t.net_cmaxy.(n) })
        t.cell_nets.(ci);
    s_cons = Array.map (fun k -> (k, t.cpen.(k))) t.cons_of_cell.(ci) }

let restore_cell t s =
  let cs = t.cells.(s.s_idx) in
  cs.x <- s.s_x;
  cs.y <- s.s_y;
  cs.orient <- s.s_orient;
  cs.variant <- s.s_variant;
  cs.sites <- s.s_sites;
  cs.abs_tiles <- s.s_abs;
  cs.exp_tiles <- s.s_exp;
  cs.pin_pos <- s.s_pp;
  cs.bbox <- s.s_bbox;
  cs.occ <- s.s_occ;
  Spatial.update t.idx s.s_idx s.s_bbox;
  t.cell_c3.(s.s_idx) <- s.s_c3;
  Array.iter
    (fun ns ->
      let n = ns.ns_net in
      t.net_c1.(n) <- ns.ns_c1;
      t.net_len.(n) <- ns.ns_len;
      t.net_minx.(n) <- ns.ns_minx;
      t.net_maxx.(n) <- ns.ns_maxx;
      t.net_miny.(n) <- ns.ns_miny;
      t.net_maxy.(n) <- ns.ns_maxy;
      t.net_cminx.(n) <- ns.ns_cminx;
      t.net_cmaxx.(n) <- ns.ns_cmaxx;
      t.net_cminy.(n) <- ns.ns_cminy;
      t.net_cmaxy.(n) <- ns.ns_cmaxy)
    s.s_nets;
  Array.iter (fun (k, pen) -> t.cpen.(k) <- pen) s.s_cons

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

let drift_report t =
  let c1 = t.c1v and c2 = t.c2v and c3 = t.c3v and c4 = t.c4v
  and teil = t.teilv in
  recompute_all t;
  let close a b =
    Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  List.filter_map
    (fun (term, cached, truth) ->
      if close cached truth then None else Some (term, cached, truth))
    [ ("C1", c1, t.c1v); ("C2", c2, t.c2v); ("C3", c3, t.c3v);
      ("C4", c4, t.c4v); ("TEIL", teil, t.teilv) ]

let verify_consistency t =
  match drift_report t with
  | [] -> ()
  | (term, cached, truth) :: _ ->
      failwith (Printf.sprintf "%s drift: cached %g vs true %g" term cached truth)

let verify_index t =
  let n = Array.length t.cells in
  if Spatial.length t.idx <> n then
    failwith
      (Printf.sprintf "Placement.verify_index: %d entries for %d cells"
         (Spatial.length t.idx) n);
  Array.iteri
    (fun ci cs ->
      if not (Spatial.mem t.idx ci) then
        failwith (Printf.sprintf "Placement.verify_index: cell %d missing" ci);
      if not (Rect.equal (Spatial.rect_of t.idx ci) cs.bbox) then
        failwith
          (Printf.sprintf "Placement.verify_index: cell %d bbox stale" ci))
    t.cells;
  (* Query equivalence against a from-scratch rebuild. *)
  let fresh = make_index t in
  Array.iteri (fun ci cs -> Spatial.insert fresh ci cs.bbox) t.cells;
  Array.iteri
    (fun ci cs ->
      let a = List.sort compare (Spatial.query t.idx cs.bbox)
      and b = List.sort compare (Spatial.query fresh cs.bbox) in
      if a <> b then
        failwith
          (Printf.sprintf "Placement.verify_index: query mismatch at cell %d"
             ci))
    t.cells

let pp_summary ppf t =
  Format.fprintf ppf "C1=%.0f C2=%.0f (p2=%.3g) C3=%.0f TEIL=%.0f cost=%.0f"
    t.c1v t.c2v t.p2v t.c3v t.teilv (total_cost t);
  if Array.length t.cons > 0 then Format.fprintf ppf " C4=%.0f" t.c4v
