open Twmc_geometry
open Twmc_netlist

type expander =
  | No_expansion
  | Dynamic of Twmc_estimator.Dynamic_area.t
  | Static of (int * int * int * int) array

type cell_state = {
  mutable x : int;
  mutable y : int;
  mutable orient : Orient.t;
  mutable variant : int;
  mutable sites : int array;
  mutable abs_tiles : Rect.t list;
  mutable exp_tiles : Rect.t list;
  mutable pin_pos : (int * int) array;
  mutable bbox : Rect.t;
  mutable occ : int array;
  (* occupancy of the current variant's sites *)
}

type t = {
  nl : Netlist.t;
  prm : Params.t;
  mutable core : Rect.t;
  mutable expander : expander;
  cells : cell_state array;
  net_c1 : float array;
  net_len : float array;
  cell_c3 : float array;
  mutable c1v : float;
  mutable c2v : float;
  mutable c3v : float;
  mutable teilv : float;
  mutable p2v : float;
  (* Lazy caches of orientation-transformed geometry, keyed
     [cell][variant][orient]. *)
  tiles_cache : Rect.t list option array array array;
  sites_cache : (int * int) array option array array array;
  fixed_cache : (int * int) array option array array;  (* [cell][orient] *)
}

let netlist t = t.nl
let params t = t.prm
let core t = t.core

(* ------------------------------------------------------------------ *)
(* Geometry caches                                                     *)

let cached_tiles t ci vi o =
  let oi = Orient.to_int o in
  match t.tiles_cache.(ci).(vi).(oi) with
  | Some tiles -> tiles
  | None ->
      let shape = (Cell.variant t.nl.Netlist.cells.(ci) vi).Cell.shape in
      let tiles = Shape.tiles (Shape.transform o shape) in
      t.tiles_cache.(ci).(vi).(oi) <- Some tiles;
      tiles

let cached_sites t ci vi o =
  let oi = Orient.to_int o in
  match t.sites_cache.(ci).(vi).(oi) with
  | Some a -> a
  | None ->
      let v = Cell.variant t.nl.Netlist.cells.(ci) vi in
      let a =
        Array.map
          (fun (s : Pin_site.t) -> Orient.apply o (s.Pin_site.x, s.Pin_site.y))
          v.Cell.sites
      in
      t.sites_cache.(ci).(vi).(oi) <- Some a;
      a

let cached_fixed t ci o =
  let oi = Orient.to_int o in
  match t.fixed_cache.(ci).(oi) with
  | Some a -> a
  | None ->
      let c = t.nl.Netlist.cells.(ci) in
      let a =
        Array.map
          (fun (p : Pin.t) ->
            match p.Pin.loc with
            | Pin.Fixed (x, y) -> Orient.apply o (x, y)
            | Pin.Uncommitted _ -> (0, 0))
          c.Cell.pins
      in
      t.fixed_cache.(ci).(oi) <- Some a;
      a

(* ------------------------------------------------------------------ *)
(* Tile expansion                                                      *)

let expand_tile t ci vi (r : Rect.t) =
  match t.expander with
  | No_expansion -> r
  | Dynamic est ->
      (* The modulation functions live in core-centered coordinates. *)
      let ccx, ccy = Rect.center t.core in
      let shifted = Rect.translate r ~dx:(-ccx) ~dy:(-ccy) in
      let left, right, bottom, top =
        Twmc_estimator.Dynamic_area.tile_expansions est ~cell:ci ~variant:vi
          shifted
      in
      Rect.expand r ~left ~right ~bottom ~top
  | Static exps ->
      let left, right, bottom, top = exps.(ci) in
      Rect.expand r ~left ~right ~bottom ~top

(* ------------------------------------------------------------------ *)
(* Per-cell cache refresh                                              *)

let refresh_cell t ci =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  let tiles0 = cached_tiles t ci cs.variant cs.orient in
  cs.abs_tiles <- List.map (fun r -> Rect.translate r ~dx:cs.x ~dy:cs.y) tiles0;
  cs.exp_tiles <- List.map (expand_tile t ci cs.variant) cs.abs_tiles;
  cs.bbox <-
    (match cs.exp_tiles with
    | [] -> Rect.empty
    | r :: rest -> List.fold_left Rect.hull r rest);
  let fixed = cached_fixed t ci cs.orient in
  let site_pos = cached_sites t ci cs.variant cs.orient in
  Array.iteri
    (fun p (pin : Pin.t) ->
      let lx, ly =
        match pin.Pin.loc with
        | Pin.Fixed _ -> fixed.(p)
        | Pin.Uncommitted _ -> site_pos.(cs.sites.(p))
      in
      cs.pin_pos.(p) <- (cs.x + lx, cs.y + ly))
    c.Cell.pins

(* ------------------------------------------------------------------ *)
(* Cost terms                                                          *)

let net_contrib t n =
  let net = t.nl.Netlist.nets.(n) in
  let minx = ref max_int and maxx = ref min_int in
  let miny = ref max_int and maxy = ref min_int in
  Array.iter
    (fun (r : Net.pin_ref) ->
      let x, y = t.cells.(r.Net.cell).pin_pos.(r.Net.pin) in
      if x < !minx then minx := x;
      if x > !maxx then maxx := x;
      if y < !miny then miny := y;
      if y > !maxy then maxy := y)
    net.Net.pins;
  let dx = float_of_int (!maxx - !minx) and dy = float_of_int (!maxy - !miny) in
  ((dx *. net.Net.hweight) +. (dy *. net.Net.vweight), dx +. dy)

(* Overlap of cell [ci]'s expanded tiles against every other cell and the
   core-boundary dummies (footnote 16: area outside the core is overlap). *)
let cell_overlap t ci =
  let cs = t.cells.(ci) in
  let total = ref 0 in
  List.iter
    (fun r -> total := !total + (Rect.area r - Rect.inter_area r t.core))
    cs.exp_tiles;
  Array.iteri
    (fun cj other ->
      if cj <> ci && Rect.overlaps cs.bbox other.bbox then
        List.iter
          (fun ra ->
            List.iter
              (fun rb -> total := !total + Rect.inter_area ra rb)
              other.exp_tiles)
          cs.exp_tiles)
    t.cells;
  float_of_int !total

let occupancy t ci =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  let v = Cell.variant c cs.variant in
  let occ = Array.make (Array.length v.Cell.sites) 0 in
  Array.iteri
    (fun p (pin : Pin.t) ->
      match pin.Pin.loc with
      | Pin.Uncommitted _ -> occ.(cs.sites.(p)) <- occ.(cs.sites.(p)) + 1
      | Pin.Fixed _ -> ())
    c.Cell.pins;
  occ

let cell_c3_of_occ t ci occ =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  let v = Cell.variant c cs.variant in
  let kappa = t.prm.Params.kappa in
  let total = ref 0.0 in
  Array.iteri
    (fun s n ->
      let cap = v.Cell.sites.(s).Pin_site.capacity in
      if n > cap then
        let e = float_of_int (n - cap + kappa) in
        total := !total +. (e *. e))
    occ;
  !total

let refresh_occupancy t ci =
  let cs = t.cells.(ci) in
  cs.occ <- occupancy t ci;
  let old = t.cell_c3.(ci) in
  let v = cell_c3_of_occ t ci cs.occ in
  t.cell_c3.(ci) <- v;
  t.c3v <- t.c3v -. old +. v

(* ------------------------------------------------------------------ *)
(* Full recomputation                                                  *)

let recompute_all t =
  Array.iteri (fun ci _ -> refresh_cell t ci) t.cells;
  t.c1v <- 0.0;
  t.teilv <- 0.0;
  Array.iteri
    (fun n _ ->
      let c1, len = net_contrib t n in
      t.net_c1.(n) <- c1;
      t.net_len.(n) <- len;
      t.c1v <- t.c1v +. c1;
      t.teilv <- t.teilv +. len)
    t.nl.Netlist.nets;
  t.c3v <- 0.0;
  Array.iteri
    (fun ci cs ->
      cs.occ <- occupancy t ci;
      t.cell_c3.(ci) <- cell_c3_of_occ t ci cs.occ;
      t.c3v <- t.c3v +. t.cell_c3.(ci))
    t.cells;
  (* Each unordered pair counted once; cell_overlap counts both directions,
     and the boundary term once per cell. *)
  let pairwise = ref 0.0 and boundary = ref 0.0 in
  Array.iteri
    (fun ci cs ->
      List.iter
        (fun r ->
          boundary :=
            !boundary +. float_of_int (Rect.area r - Rect.inter_area r t.core))
        cs.exp_tiles;
      Array.iteri
        (fun cj other ->
          if cj > ci && Rect.overlaps cs.bbox other.bbox then
            List.iter
              (fun ra ->
                List.iter
                  (fun rb ->
                    pairwise := !pairwise +. float_of_int (Rect.inter_area ra rb))
                  other.exp_tiles)
              cs.exp_tiles)
        t.cells)
    t.cells;
  t.c2v <- !pairwise +. !boundary

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ~params ~core ~expander ~rng (nl : Netlist.t) =
  if Rect.is_empty core then invalid_arg "Placement.create: empty core";
  let n = Netlist.n_cells nl in
  let cells =
    Array.init n (fun ci ->
        let c = nl.Netlist.cells.(ci) in
        { x = Twmc_sa.Rng.int_incl rng core.Rect.x0 core.Rect.x1;
          y = Twmc_sa.Rng.int_incl rng core.Rect.y0 core.Rect.y1;
          orient = Orient.R0;
          variant = 0;
          sites = Sites.random_assignment rng c ~variant:0;
          abs_tiles = [];
          exp_tiles = [];
          pin_pos = Array.make (Cell.n_pins c) (0, 0);
          bbox = Rect.empty;
          occ = [||] })
  in
  let t =
    { nl;
      prm = params;
      core;
      expander;
      cells;
      net_c1 = Array.make (Netlist.n_nets nl) 0.0;
      net_len = Array.make (Netlist.n_nets nl) 0.0;
      cell_c3 = Array.make n 0.0;
      c1v = 0.0;
      c2v = 0.0;
      c3v = 0.0;
      teilv = 0.0;
      p2v = 1.0;
      tiles_cache =
        Array.init n (fun ci ->
            Array.init (Cell.n_variants nl.Netlist.cells.(ci)) (fun _ ->
                Array.make 8 None));
      sites_cache =
        Array.init n (fun ci ->
            Array.init (Cell.n_variants nl.Netlist.cells.(ci)) (fun _ ->
                Array.make 8 None));
      fixed_cache = Array.init n (fun _ -> Array.make 8 None) }
  in
  recompute_all t;
  t

let expander t = t.expander

let set_expander t e =
  t.expander <- e;
  recompute_all t

let set_core t core =
  if Rect.is_empty core then invalid_arg "Placement.set_core: empty core";
  t.core <- core;
  recompute_all t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let cell_pos t ci = (t.cells.(ci).x, t.cells.(ci).y)
let cell_orient t ci = t.cells.(ci).orient
let cell_variant t ci = t.cells.(ci).variant
let site_of_pin t ~cell ~pin = t.cells.(cell).sites.(pin)
let pin_position t ~cell ~pin = t.cells.(cell).pin_pos.(pin)
let abs_tiles t ci = t.cells.(ci).abs_tiles
let expanded_tiles t ci = t.cells.(ci).exp_tiles
let c1 t = t.c1v
let c2_raw t = t.c2v
let c3 t = t.c3v
let p2 t = t.p2v
let set_p2 t v = t.p2v <- v
let teil t = t.teilv

let total_cost t =
  t.c1v +. (t.p2v *. t.c2v) +. (t.prm.Params.p3 *. t.c3v)

let chip_bbox t =
  Array.fold_left
    (fun acc cs -> List.fold_left Rect.hull acc cs.exp_tiles)
    Rect.empty t.cells

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let update_nets_of_cell t ci =
  List.iter
    (fun n ->
      let c1', len' = net_contrib t n in
      t.c1v <- t.c1v -. t.net_c1.(n) +. c1';
      t.teilv <- t.teilv -. t.net_len.(n) +. len';
      t.net_c1.(n) <- c1';
      t.net_len.(n) <- len')
    t.nl.Netlist.nets_of_cell.(ci)

let set_cell t ci ?x ?y ?orient ?variant ?sites () =
  let cs = t.cells.(ci) in
  let ov_old = cell_overlap t ci in
  let variant_changed =
    match variant with Some v -> v <> cs.variant | None -> false
  in
  (match x with Some v -> cs.x <- v | None -> ());
  (match y with Some v -> cs.y <- v | None -> ());
  (match orient with Some v -> cs.orient <- v | None -> ());
  (match variant with Some v -> cs.variant <- v | None -> ());
  (match sites with
  | Some s -> cs.sites <- s
  | None ->
      if variant_changed then begin
        (* Clamp assignments into the new variant's site array, honouring
           edge restrictions. *)
        let c = t.nl.Netlist.cells.(ci) in
        let n_sites =
          Array.length (Cell.variant c cs.variant).Cell.sites
        in
        Array.iteri
          (fun p s ->
            if s >= 0 then begin
              let s = if s < n_sites then s else s mod max 1 n_sites in
              let allowed = Cell.allowed_sites c ~variant:cs.variant p in
              cs.sites.(p) <-
                (if List.mem s allowed then s
                 else
                   match allowed with
                   | [] ->
                       invalid_arg
                         "Placement.set_cell: pin has no allowed site in \
                          new variant"
                   | a :: _ -> a)
            end)
          cs.sites
      end);
  refresh_cell t ci;
  update_nets_of_cell t ci;
  let ov_new = cell_overlap t ci in
  t.c2v <- t.c2v -. ov_old +. ov_new;
  if variant_changed || sites <> None then refresh_occupancy t ci

let set_cell_sites t ci sites =
  let cs = t.cells.(ci) in
  let c = t.nl.Netlist.cells.(ci) in
  cs.sites <- sites;
  let site_pos = cached_sites t ci cs.variant cs.orient in
  Array.iteri
    (fun p (pin : Pin.t) ->
      match pin.Pin.loc with
      | Pin.Uncommitted _ ->
          let lx, ly = site_pos.(cs.sites.(p)) in
          cs.pin_pos.(p) <- (cs.x + lx, cs.y + ly)
      | Pin.Fixed _ -> ())
    c.Cell.pins;
  update_nets_of_cell t ci;
  refresh_occupancy t ci

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type cell_snapshot = {
  s_idx : int;
  s_x : int;
  s_y : int;
  s_orient : Orient.t;
  s_variant : int;
  s_sites : int array;
  s_abs : Rect.t list;
  s_exp : Rect.t list;
  s_pp : (int * int) array;
  s_bbox : Rect.t;
  s_occ : int array;
  s_c3 : float;
  s_nets : (int * float * float) list;
}

type cost_snapshot = { g_c1 : float; g_c2 : float; g_c3 : float; g_teil : float }

let snapshot_cost t =
  { g_c1 = t.c1v; g_c2 = t.c2v; g_c3 = t.c3v; g_teil = t.teilv }

let restore_cost t s =
  t.c1v <- s.g_c1;
  t.c2v <- s.g_c2;
  t.c3v <- s.g_c3;
  t.teilv <- s.g_teil

let snapshot_cell t ci =
  let cs = t.cells.(ci) in
  { s_idx = ci;
    s_x = cs.x;
    s_y = cs.y;
    s_orient = cs.orient;
    s_variant = cs.variant;
    s_sites = Array.copy cs.sites;
    s_abs = cs.abs_tiles;
    s_exp = cs.exp_tiles;
    s_pp = Array.copy cs.pin_pos;
    s_bbox = cs.bbox;
    s_occ = Array.copy cs.occ;
    s_c3 = t.cell_c3.(ci);
    s_nets =
      List.map
        (fun n -> (n, t.net_c1.(n), t.net_len.(n)))
        t.nl.Netlist.nets_of_cell.(ci) }

let restore_cell t s =
  let cs = t.cells.(s.s_idx) in
  cs.x <- s.s_x;
  cs.y <- s.s_y;
  cs.orient <- s.s_orient;
  cs.variant <- s.s_variant;
  cs.sites <- s.s_sites;
  cs.abs_tiles <- s.s_abs;
  cs.exp_tiles <- s.s_exp;
  cs.pin_pos <- s.s_pp;
  cs.bbox <- s.s_bbox;
  cs.occ <- s.s_occ;
  t.cell_c3.(s.s_idx) <- s.s_c3;
  List.iter
    (fun (n, c1, len) ->
      t.net_c1.(n) <- c1;
      t.net_len.(n) <- len)
    s.s_nets

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

let drift_report t =
  let c1 = t.c1v and c2 = t.c2v and c3 = t.c3v and teil = t.teilv in
  recompute_all t;
  let close a b =
    Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  List.filter_map
    (fun (term, cached, truth) ->
      if close cached truth then None else Some (term, cached, truth))
    [ ("C1", c1, t.c1v); ("C2", c2, t.c2v); ("C3", c3, t.c3v);
      ("TEIL", teil, t.teilv) ]

let verify_consistency t =
  match drift_report t with
  | [] -> ()
  | (term, cached, truth) :: _ ->
      failwith (Printf.sprintf "%s drift: cached %g vs true %g" term cached truth)

let pp_summary ppf t =
  Format.fprintf ppf "C1=%.0f C2=%.0f (p2=%.3g) C3=%.0f TEIL=%.0f cost=%.0f"
    t.c1v t.c2v t.p2v t.c3v t.teilv (total_cost t)
