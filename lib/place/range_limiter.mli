(** The range-limiter window (Sec 3.2.2) and displacement-point selection
    (Sec 3.2.3).

    At low temperatures only short moves have a reasonable acceptance
    probability, so the candidate location for a displaced cell is confined
    to a window centered on the cell whose span shrinks with the logarithm
    of T:

    {v W_x(T) = W_x∞ · ρ^log10(T) / λ,   λ = ρ^log10(T∞) v}

    (Eqns 12–14).  ρ = 4 gave both the lowest final TEIL and the lowest
    residual overlap.  The window never shrinks below [min_window] grid
    units (6); reaching that span is stage 1's stopping criterion.

    The selector [D_s] restricts the step to multiples of [W/6] with factors
    in {-3..3} (48 candidate points); [D_r] picks uniformly in the window
    and is kept for the Sec 3.2.3 ablation (22 % more residual overlap). *)

type t

val create :
  rho:float -> t_inf:float -> wx_inf:float -> wy_inf:float -> min_window:int -> t
(** [wx_inf]/[wy_inf] are the window spans at [T∞] — typically twice the
    core spans, "extending beyond the core area". *)

val of_core :
  rho:float -> t_inf:float -> core:Twmc_geometry.Rect.t -> min_window:int -> t

val window : t -> temp:float -> float * float
(** [(W_x(T), W_y(T))], each clamped to at least [min_window]. *)

val at_min_span : t -> temp:float -> bool
(** True when both spans have reached [min_window] — the stage-1 stopping
    criterion. *)

val t_for_window_fraction : t -> mu:float -> float
(** Eqns 25–28: the temperature [T'] at which the window is the fraction
    [mu] of its [T∞] span — stage 2 starts here (μ = 0.03). *)

val select_ds : Twmc_sa.Rng.t -> t -> temp:float -> int * int
(** A [D_s] step [(dx, dy)]: both components multiples of a sixth of the
    window span, not both zero. *)

val select_dr : Twmc_sa.Rng.t -> t -> temp:float -> int * int
(** A [D_r] step: uniform in the window, not (0, 0). *)

val select :
  Params.displacement_selector -> Twmc_sa.Rng.t -> t -> temp:float -> int * int
