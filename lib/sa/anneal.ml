let metropolis rng ~t ~delta =
  delta <= 0.0
  || (t > 0.0 && Rng.unit_float rng < exp (-.delta /. t))

type proposal = {
  delta : float;
  commit : unit -> unit;
  abandon : unit -> unit;
}

type stats = {
  temperature : float;
  attempts : int;
  accepts : int;
  cost : float;
}

type stop_reason = Schedule_exhausted | Frozen of int | Client_stop

type config = {
  schedule : Schedule.t;
  t_start : float;
  t_floor : float;
  moves_per_temp : int;
  freeze_loops : int;
}

let run config ~rng ~generate ~cost ?(on_temp = fun _ -> ())
    ?(obs = Twmc_obs.Ctx.disabled) ?stop () =
  if config.moves_per_temp <= 0 then invalid_arg "Anneal.run: moves_per_temp";
  let trace = ref [] in
  let frozen = ref 0 in
  let last_cost = ref nan in
  let rec loop t =
    let accepts = ref 0 in
    for _ = 1 to config.moves_per_temp do
      match generate rng ~t with
      | None -> ()
      | Some p ->
          if metropolis rng ~t ~delta:p.delta then (
            p.commit ();
            incr accepts)
          else p.abandon ()
    done;
    let c = cost () in
    let st =
      { temperature = t; attempts = config.moves_per_temp;
        accepts = !accepts; cost = c }
    in
    trace := st :: !trace;
    on_temp st;
    if Twmc_obs.Ctx.tracing obs then
      Twmc_obs.Ctx.point obs ~name:"anneal.temp"
        ~attrs:
          [ ("t", Twmc_obs.Attr.Float t);
            ("acceptance",
             Twmc_obs.Attr.Float
               (float_of_int !accepts /. float_of_int config.moves_per_temp));
            ("cost", Twmc_obs.Attr.Float c) ]
        ();
    if c = !last_cost then incr frozen else frozen := 0;
    last_cost := c;
    if config.freeze_loops > 0 && !frozen >= config.freeze_loops then
      Frozen !frozen
    else
      match stop with
      | Some f when f ~t -> Client_stop
      | _ ->
          let t' = Schedule.next config.schedule t in
          if t' < config.t_floor then Schedule_exhausted else loop t'
  in
  let reason =
    Twmc_obs.Ctx.span obs ~name:"anneal"
      ~attrs:
        (if Twmc_obs.Ctx.tracing obs then
           [ ("t_start", Twmc_obs.Attr.Float config.t_start);
             ("moves_per_temp", Twmc_obs.Attr.Int config.moves_per_temp) ]
         else [])
      (fun () -> loop config.t_start)
  in
  (reason, List.rev !trace)
