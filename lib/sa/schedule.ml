type t = { breakpoints : (float * float) list; final : float }
(* [breakpoints] are (absolute threshold, alpha) pairs, thresholds strictly
   decreasing; alpha of the first pair whose threshold is <= T applies. *)

let custom ~s_t ~breakpoints ~final =
  if s_t <= 0.0 then invalid_arg "Schedule.custom: s_t <= 0";
  let rec check = function
    | (b1, _) :: ((b2, _) :: _ as rest) ->
        if b1 <= b2 then invalid_arg "Schedule.custom: breakpoints not decreasing";
        check rest
    | _ -> ()
  in
  check breakpoints;
  List.iter
    (fun (_, a) ->
      if a <= 0.0 || a >= 1.0 then invalid_arg "Schedule.custom: alpha out of (0,1)")
    ((0.0, final) :: breakpoints);
  { breakpoints = List.map (fun (b, a) -> (s_t *. b, a)) breakpoints; final }

let stage1 ~s_t =
  custom ~s_t ~breakpoints:[ (7000., 0.85); (200., 0.92); (10., 0.85) ] ~final:0.80

let stage2 ~s_t = custom ~s_t ~breakpoints:[ (10., 0.82) ] ~final:0.70

let geometric ~alpha = custom ~s_t:1.0 ~breakpoints:[] ~final:alpha

let alpha t t_old =
  let rec go = function
    | (threshold, a) :: rest -> if t_old >= threshold then a else go rest
    | [] -> t.final
  in
  go t.breakpoints

let next t t_old = alpha t t_old *. t_old

let reference_avg_cell_area = 1e4
let reference_t_infinity = 1e5

let s_t ~avg_cell_area =
  if avg_cell_area <= 0.0 then invalid_arg "Schedule.s_t: nonpositive area";
  avg_cell_area /. reference_avg_cell_area

let t_infinity ~s_t =
  if s_t <= 0.0 then invalid_arg "Schedule.t_infinity: s_t <= 0";
  s_t *. reference_t_infinity

let temperatures t ~t_start ~t_final =
  if t_start <= 0.0 then invalid_arg "Schedule.temperatures: t_start <= 0";
  let rec go temp acc =
    if temp < t_final then List.rev acc else go (next t temp) (temp :: acc)
  in
  go t_start []

let n_steps t ~t_start ~t_final = List.length (temperatures t ~t_start ~t_final)
