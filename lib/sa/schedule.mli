(** Cooling schedules.

    TimberWolfMC updates the temperature multiplicatively,
    [T_new = α(T_old) · T_old] (Eqn 18), with the piecewise-constant α of
    Table 1 (stage 1) and Table 2 (stage 2).  The whole profile is scaled by
    [S_T = c̄_a / c̄_a*] (Eqns 19–21) so circuits of different grid and cell
    sizes see the same effective schedule; the reference point is a 25-cell
    circuit with average effective cell area [c̄_a* = 10⁴] annealed from
    [T∞* = 10⁵]. *)

type t

val stage1 : s_t:float -> t
(** Table 1: α = 0.85 above [S_T·7000], 0.92 down to [S_T·200], 0.85 down to
    [S_T·10], then 0.80. *)

val stage2 : s_t:float -> t
(** Table 2: α = 0.82 above [S_T·10], then 0.70. *)

val custom : s_t:float -> breakpoints:(float * float) list -> final:float -> t
(** [custom ~s_t ~breakpoints ~final]: each [(b, a)] pair means "α = [a]
    while [T_old >= S_T·b]"; breakpoints must be strictly decreasing in [b];
    [final] applies below the last breakpoint. *)

val geometric : alpha:float -> t
(** Constant α, as used in the Fig 3 experiment (α = 0.90). *)

val alpha : t -> float -> float
(** [alpha sched t_old] — the multiplier at this temperature. *)

val next : t -> float -> float
(** [next sched t_old = alpha sched t_old *. t_old]. *)

val s_t : avg_cell_area:float -> float
(** [S_T] (Eqn 20) with the paper's reference [c̄_a* = 10⁴]. *)

val t_infinity : s_t:float -> float
(** [T∞ = S_T · 10⁵] (Eqn 21). *)

val temperatures : t -> t_start:float -> t_final:float -> float list
(** The full decreasing profile from [t_start] until dropping below
    [t_final] (the final value below [t_final] is not included). *)

val n_steps : t -> t_start:float -> t_final:float -> int
