(** The generic simulated-annealing engine.

    Per Sec 2.1 the algorithm is characterized by (1) the [generate]
    function, (2) the acceptance function, (3) the temperature [update]
    function, (4) the inner-loop criterion and (5) the stopping criterion.
    The engine owns (2)–(5); the client supplies (1) as a callback that
    proposes a move, reports its ΔC, and commits or rolls back on demand —
    the natural shape for the heavily mutable placement state. *)

val metropolis : Rng.t -> t:float -> delta:float -> bool
(** Standard acceptance: always for [delta <= 0], else with probability
    [exp (-delta /. t)].  [t <= 0] accepts only improving moves. *)

type proposal = {
  delta : float;  (** ΔC of the proposed move. *)
  commit : unit -> unit;  (** Make the move permanent. *)
  abandon : unit -> unit;  (** Restore the pre-move state. *)
}

type stats = {
  temperature : float;
  attempts : int;
  accepts : int;
  cost : float;  (** Client-reported cost after the inner loop. *)
}

type stop_reason =
  | Schedule_exhausted  (** Temperature fell below the floor. *)
  | Frozen of int  (** Cost unchanged for the configured number of loops. *)
  | Client_stop  (** The [stop] callback returned true. *)

type config = {
  schedule : Schedule.t;
  t_start : float;
  t_floor : float;
      (** Stop when the updated temperature would fall below this. *)
  moves_per_temp : int;  (** The inner-loop length [A = A_c · N_c] (Eqn 17). *)
  freeze_loops : int;
      (** Stop after this many consecutive inner loops with unchanged cost;
          0 disables the criterion (Stage 2's final iteration uses 3). *)
}

val run :
  config ->
  rng:Rng.t ->
  generate:(Rng.t -> t:float -> proposal option) ->
  cost:(unit -> float) ->
  ?on_temp:(stats -> unit) ->
  ?obs:Twmc_obs.Ctx.t ->
  ?stop:(t:float -> bool) ->
  unit ->
  stop_reason * stats list
(** Runs the annealing loop.  [generate] may return [None] for a
    degenerate/self-rejecting attempt (still counted as an attempt).
    [stop ~t] is evaluated after each inner loop — TimberWolfMC's stage-1
    criterion (range-limiter window at minimum span) plugs in here.
    Returns the reason plus per-temperature statistics, oldest first.

    [obs] (default disabled, zero overhead) wraps the run in an ["anneal"]
    span and emits one ["anneal.temp"] point per inner loop (temperature,
    acceptance rate, cost).  Tracing never draws from [rng] and never
    mutates client state: results are identical with it on or off. *)
