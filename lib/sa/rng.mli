(** Deterministic random-number generation.

    Every stochastic routine in the package threads an explicit [Rng.t], so
    experiments are exactly reproducible from a seed.  The interface mirrors
    the primitives the paper's pseudo-code uses: the uniform integer
    [R(k, l)] and the biased binary choice [R_i(1, 2, p)] of Sec 3.2.1. *)

type t

val create : seed:int -> t
val split : t -> t
(** A new generator whose stream is independent of (and deterministic from)
    the parent's current state. *)

val copy : t -> t

val to_binary_string : t -> string
(** Opaque cursor capturing the exact stream position; a generator restored
    with {!of_binary_string} produces the same subsequent draws. *)

val of_binary_string : string -> t option
(** [None] if the cursor bytes are not a valid serialized generator. *)

val int_incl : t -> int -> int -> int
(** [int_incl rng k l] is the paper's [R(k, l)]: uniform on [k, l]
    inclusive; [k <= l] required. *)

val float : t -> float -> float
(** Uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool_with_prob : t -> float -> bool
(** [bool_with_prob rng p] is the paper's [R_i(1, 2, p)] collapsed to a
    boolean: true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a nonempty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller; used by the synthetic workload generator. *)
