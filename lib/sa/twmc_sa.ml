(** Simulated-annealing substrate: deterministic RNG, the TimberWolfMC
    cooling schedules, and the generic Metropolis engine. *)

module Rng = Rng
module Schedule = Schedule
module Anneal = Anneal
