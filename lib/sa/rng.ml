type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x7157c3; seed lxor 0x5eed |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
let copy = Random.State.copy

(* Cursor (de)serialization for durable checkpoints: the marshaled state
   replays the exact stream position, so a resumed flow consumes the same
   draws an uninterrupted one would. *)
let to_binary_string t = Marshal.to_string (t : Random.State.t) []

let of_binary_string s =
  match (Marshal.from_string s 0 : Random.State.t) with
  | st -> Some st
  | exception _ -> None

let int_incl t k l =
  if k > l then invalid_arg "Rng.int_incl: k > l";
  k + Random.State.int t (l - k + 1)

let float t bound = Random.State.float t bound
let unit_float t = Random.State.float t 1.0
let bool_with_prob t p = Random.State.float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(Random.State.int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (Random.State.int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u = Random.State.float t 1.0 in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () and u2 = Random.State.float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
