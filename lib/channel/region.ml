open Twmc_geometry

type owner = Cell of int | Boundary
type dir = V | H

type t = {
  rect : Rect.t;
  dir : dir;
  lo_owner : owner;
  hi_owner : owner;
  lo_edge : Edge.t;
  hi_edge : Edge.t;
}

let thickness t =
  match t.dir with V -> Rect.width t.rect | H -> Rect.height t.rect

let span_length t =
  match t.dir with V -> Rect.height t.rect | H -> Rect.width t.rect

let center t = Rect.center t.rect

let borders_cell t ci =
  (match t.lo_owner with Cell c -> c = ci | Boundary -> false)
  || (match t.hi_owner with Cell c -> c = ci | Boundary -> false)

let pp_owner ppf = function
  | Cell c -> Format.fprintf ppf "c%d" c
  | Boundary -> Format.pp_print_string ppf "core"

let pp ppf t =
  Format.fprintf ppf "%s %a [%a|%a] w=%d"
    (match t.dir with V -> "V" | H -> "H")
    Rect.pp t.rect pp_owner t.lo_owner pp_owner t.hi_owner (thickness t)
