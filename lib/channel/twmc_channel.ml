(** Channel definition (Sec 4.1): critical regions, the channel graph, and
    pin projection. *)

module Region = Region
module Extract = Extract
module Graph = Graph
module Pin_map = Pin_map
