(** Critical regions (Sec 4.1).

    A critical region is a rectangle of empty space bordered on two opposite
    sides by exactly two parallel edges belonging to different cells (or one
    cell edge and the core boundary): the only channel shape whose expected
    width is given by the single density parameter of Eqn 22.  Unlike Chen's
    bottlenecks, overlapping critical regions (one from a vertical pair, one
    from a horizontal pair) are all kept. *)

type owner = Cell of int | Boundary

type dir = V | H
(** [V]: defined by two vertical cell edges — a vertical channel whose
    thickness is the rectangle's width.  [H]: defined by horizontal edges;
    thickness is the height. *)

type t = {
  rect : Twmc_geometry.Rect.t;
  dir : dir;
  lo_owner : owner;  (** Owner of the low-side bordering edge. *)
  hi_owner : owner;
  lo_edge : Twmc_geometry.Edge.t;
  hi_edge : Twmc_geometry.Edge.t;
}

val thickness : t -> int
(** The gap between the two defining edges. *)

val span_length : t -> int
(** The common span of the two defining edges. *)

val center : t -> int * int
val borders_cell : t -> int -> bool
val pp : Format.formatter -> t -> unit
