(** The channel-definition algorithm (Sec 4.1): enumerate every critical
    region of a placement.

    A region is created between every pair of parallel edges belonging to
    different cells (or a cell and the core boundary) such that (1) the
    edges' spans overlap, bounding a rectangle of empty space whose extent
    is the common span, and (2) no cell material intersects that rectangle.
    All regions are kept, including overlapping ones.

    One generalization beyond the paper's description: when cell material
    blocks only part of a facing pair's common span, the unblocked
    sub-spans still yield regions (the paper's packed industrial layouts
    rarely hit this; our annealed placements of scattered synthetic cells
    hit it constantly, and dropping the pair would disconnect the channel
    graph). *)

val cell_edges :
  tiles:Twmc_geometry.Rect.t list -> Twmc_geometry.Edge.t list
(** Absolute boundary edges of a placed cell from its absolute tiles. *)

val boundary_edges : core:Twmc_geometry.Rect.t -> Twmc_geometry.Edge.t list
(** The four inward-facing core-boundary edges (the Sec 2.2 dummy cells'
    inner edges). *)

val regions :
  core:Twmc_geometry.Rect.t ->
  cells:Twmc_geometry.Rect.t list array ->
  Region.t list
(** [cells.(i)] is cell [i]'s absolute (unexpanded) tile list.  Regions are
    returned in a deterministic order. *)

val of_placement : Twmc_place.Placement.t -> Region.t list
(** Convenience: regions of the placement's current cell tiles within its
    core. *)
