(** Mapping net pins onto the channel graph (Sec 4.1, Fig 9: "the pins on
    each edge of each cell are mapped onto the corresponding adjacent
    channel edge" by perpendicular projection).

    Each pin becomes a set of candidate graph nodes: the critical regions
    bordered by the pin's cell whose rectangle contains the pin's location
    on its boundary (several, when regions overlap).  Electrically
    equivalent pins (same net, same cell, same [equiv] class) merge into one
    terminal whose candidate set is the union — the router connects to any
    one of them (Sec 4.2). *)

type terminal = {
  candidates : int list;  (** Nonempty list of graph node ids. *)
  pos : int * int;  (** Representative pin location, for reporting. *)
}

type net_task = {
  net : int;
  terminals : terminal list;
}

val project_pin :
  Graph.t -> cell:int -> pos:int * int -> int list
(** Candidate nodes for one pin; falls back to the Manhattan-nearest region
    when no bordering region contains the pin (e.g. the edge is fully
    abutted). *)

val tasks :
  Graph.t -> Twmc_place.Placement.t -> net_task list
(** One task per net with at least two terminals after equivalence
    merging. *)
