open Twmc_geometry

type edge = { id : int; a : int; b : int; length : int; capacity : int }

type t = {
  regions : Region.t array;
  edges : edge array;
  adj : (int * int) list array;
}

let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

let build ~track_spacing regions =
  if track_spacing <= 0 then invalid_arg "Graph.build: track_spacing";
  let regions = Array.of_list regions in
  let n = Array.length regions in
  let edges = ref [] in
  let next = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rect.touches regions.(i).Region.rect regions.(j).Region.rect then begin
        let cap =
          max 1
            (min (Region.thickness regions.(i)) (Region.thickness regions.(j))
            / track_spacing)
        in
        (* Centers can coincide for overlapping regions; traversing is then
           free but still capacity-limited. *)
        let length =
          manhattan (Region.center regions.(i)) (Region.center regions.(j))
        in
        edges := { id = !next; a = i; b = j; length; capacity = cap } :: !edges;
        incr next
      end
    done
  done;
  let edges = Array.of_list (List.rev !edges) in
  let adj = Array.make n [] in
  Array.iter
    (fun e ->
      adj.(e.a) <- (e.id, e.b) :: adj.(e.a);
      adj.(e.b) <- (e.id, e.a) :: adj.(e.b))
    edges;
  { regions; edges; adj }

let n_nodes t = Array.length t.regions
let n_edges t = Array.length t.edges
let other_end e n = if e.a = n then e.b else e.a
let neighbours t n = t.adj.(n)

let edge_between t i j =
  List.find_opt (fun (_, o) -> o = j) t.adj.(i)
  |> Option.map (fun (eid, _) -> t.edges.(eid))

let nearest_node t p =
  if Array.length t.regions = 0 then invalid_arg "Graph.nearest_node: empty";
  let best = ref 0 and bestd = ref max_int in
  Array.iteri
    (fun i r ->
      let d = manhattan (Region.center r) p in
      if d < !bestd then begin
        bestd := d;
        best := i
      end)
    t.regions;
  !best

let connected_components t =
  let n = n_nodes t in
  let seen = Array.make n false in
  let comps = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      let comp = ref [] in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            comp := v :: !comp;
            List.iter
              (fun (_, o) ->
                if not seen.(o) then begin
                  seen.(o) <- true;
                  stack := o :: !stack
                end)
              t.adj.(v)
      done;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let pp_stats ppf t =
  Format.fprintf ppf "channel graph: %d regions, %d edges, %d components"
    (n_nodes t) (n_edges t)
    (List.length (connected_components t))
