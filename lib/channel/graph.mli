(** The channel graph (Sec 4.1, Fig 9).

    Nodes are critical regions; an edge connects every pair of regions whose
    rectangles touch (share boundary or overlap — overlapping regions are
    legal here, unlike in Chen's method).  Each graph edge carries:

    - [length]: the Manhattan distance between the region centers, the
      routing-length contribution of traversing it;
    - [capacity]: how many net segments may cross, limited by the thinner of
      the two regions: [min thickness / track_spacing] (at least 1).

    This is the only structure the global router sees — it is independent of
    the layout style (Sec 4.2). *)

type edge = {
  id : int;
  a : int;  (** Node (region) index. *)
  b : int;
  length : int;
  capacity : int;
}

type t = {
  regions : Region.t array;
  edges : edge array;
  adj : (int * int) list array;
      (** Per node: [(edge id, neighbour node)] pairs. *)
}

val build : track_spacing:int -> Region.t list -> t

val n_nodes : t -> int
val n_edges : t -> int
val other_end : edge -> int -> int
val neighbours : t -> int -> (int * int) list
val edge_between : t -> int -> int -> edge option

val nearest_node : t -> int * int -> int
(** Node whose region center is Manhattan-closest to the point; requires a
    nonempty graph. *)

val connected_components : t -> int list list
val pp_stats : Format.formatter -> t -> unit
