open Twmc_geometry
open Twmc_netlist

type terminal = { candidates : int list; pos : int * int }
type net_task = { net : int; terminals : terminal list }

let on_closed_rect (r : Rect.t) (x, y) =
  x >= r.Rect.x0 && x <= r.Rect.x1 && y >= r.Rect.y0 && y <= r.Rect.y1

let project_pin g ~cell ~pos =
  let hits = ref [] in
  Array.iteri
    (fun i region ->
      if Region.borders_cell region cell && on_closed_rect region.Region.rect pos
      then hits := i :: !hits)
    g.Graph.regions;
  match !hits with
  | [] -> [ Graph.nearest_node g pos ]
  | l -> List.rev l

let tasks g p =
  let nl = Twmc_place.Placement.netlist p in
  Array.to_list
    (Array.mapi
       (fun ni (net : Net.t) ->
         (* Group pin references into terminals by (cell, equiv class);
            pins without an equiv class are their own terminal. *)
         let groups = Hashtbl.create 8 in
         let order = ref [] in
         Array.iteri
           (fun k (r : Net.pin_ref) ->
             let cell = r.Net.cell in
             let pin = nl.Netlist.cells.(cell).Cell.pins.(r.Net.pin) in
             let key =
               match pin.Pin.equiv with
               | Some e -> `Equiv (cell, e)
               | None -> `Solo k
             in
             let pos = Twmc_place.Placement.pin_position p ~cell ~pin:r.Net.pin in
             let cands = project_pin g ~cell ~pos in
             match Hashtbl.find_opt groups key with
             | Some (old_cands, old_pos) ->
                 Hashtbl.replace groups key (old_cands @ cands, old_pos)
             | None ->
                 Hashtbl.add groups key (cands, pos);
                 order := key :: !order)
           net.Net.pins;
         let terminals =
           List.rev_map
             (fun key ->
               let cands, pos = Hashtbl.find groups key in
               { candidates = List.sort_uniq Stdlib.compare cands; pos })
             !order
         in
         { net = ni; terminals })
       nl.Netlist.nets)
  |> List.filter (fun t -> List.length t.terminals >= 2)
