open Twmc_geometry

let cell_edges ~tiles = Shape.boundary_edges (Shape.of_tiles tiles)

let boundary_edges ~core:(c : Rect.t) =
  [ Edge.make Edge.V ~pos:c.Rect.x0 ~span:(Rect.yspan c) ~side:Edge.High;
    Edge.make Edge.V ~pos:c.Rect.x1 ~span:(Rect.yspan c) ~side:Edge.Low;
    Edge.make Edge.H ~pos:c.Rect.y0 ~span:(Rect.xspan c) ~side:Edge.High;
    Edge.make Edge.H ~pos:c.Rect.y1 ~span:(Rect.xspan c) ~side:Edge.Low ]

(* The open rectangles between two facing edges: the common span, minus the
   projections of any cell material lying between the edges.  Splitting the
   span (rather than discarding the pair outright) keeps the free space
   fully covered when a third cell blocks only part of a long edge — the
   situation the core-boundary edges are almost always in. *)
let gap_rects ~all_tiles (a : Edge.t) (b : Edge.t) =
  let lo, hi = if a.Edge.pos <= b.Edge.pos then (a, b) else (b, a) in
  let span = Edge.common_span a b in
  if Interval.is_empty span || lo.Edge.pos = hi.Edge.pos then []
  else
    let rect_of (sub : Interval.t) =
      match a.Edge.dir with
      | Edge.V ->
          Rect.make ~x0:lo.Edge.pos ~y0:sub.Interval.lo ~x1:hi.Edge.pos
            ~y1:sub.Interval.hi
      | Edge.H ->
          Rect.make ~x0:sub.Interval.lo ~y0:lo.Edge.pos ~x1:sub.Interval.hi
            ~y1:hi.Edge.pos
    in
    let full = rect_of span in
    let blocker_spans =
      List.filter_map
        (fun t ->
          if Rect.overlaps full t then
            Some
              (match a.Edge.dir with
              | Edge.V -> Rect.yspan (Rect.inter full t)
              | Edge.H -> Rect.xspan (Rect.inter full t))
          else None)
        all_tiles
    in
    Interval.subtract span blocker_spans
    |> List.filter (fun (s : Interval.t) -> Interval.length s > 0)
    |> List.map rect_of

let regions ~core ~cells =
  let owners_edges =
    (Region.Boundary, boundary_edges ~core)
    :: Array.to_list
         (Array.mapi
            (fun i tiles -> (Region.Cell i, cell_edges ~tiles))
            cells)
  in
  let all_tiles = Array.to_list cells |> List.concat in
  let acc = ref [] in
  let rec pairs = function
    | [] -> ()
    | (o1, es1) :: rest ->
        List.iter
          (fun (o2, es2) ->
            (* Boundary-boundary pairs span the whole (possibly occupied)
               core and are not channels between cells; skip them. *)
            if not (o1 = Region.Boundary && o2 = Region.Boundary) then
              List.iter
                (fun e1 ->
                  List.iter
                    (fun e2 ->
                      if Edge.faces e1 e2 then
                        List.iter
                          (fun r ->
                            let lo, hi, lo_o, hi_o =
                              if e1.Edge.pos <= e2.Edge.pos then (e1, e2, o1, o2)
                              else (e2, e1, o2, o1)
                            in
                            let dir =
                              match e1.Edge.dir with
                              | Edge.V -> Region.V
                              | Edge.H -> Region.H
                            in
                            acc :=
                              { Region.rect = r;
                                dir;
                                lo_owner = lo_o;
                                hi_owner = hi_o;
                                lo_edge = lo;
                                hi_edge = hi }
                              :: !acc)
                          (gap_rects ~all_tiles e1 e2))
                    es2)
                es1)
          rest;
        pairs rest
  in
  pairs owners_edges;
  List.sort
    (fun (a : Region.t) (b : Region.t) -> Rect.compare a.Region.rect b.Region.rect)
    !acc

let of_placement p =
  let nl = Twmc_place.Placement.netlist p in
  let n = Twmc_netlist.Netlist.n_cells nl in
  let cells = Array.init n (fun i -> Twmc_place.Placement.abs_tiles p i) in
  regions ~core:(Twmc_place.Placement.core p) ~cells
